package tracestore

import "math"

// Config tunes one node's trace store. The zero value is the kill
// switch: a store is only created when Enabled is explicitly true, so
// threading a Config through engine/simnet/chord configs is free until
// someone opts in.
type Config struct {
	// Enabled turns the store on. Default off: the store is a strictly
	// additive observer and ships dark.
	Enabled bool
	// WindowSeconds is the virtual-time width of one segment window
	// (default 60). The active segment is sealed when an append's
	// timestamp crosses into a later window.
	WindowSeconds float64
	// MaxSegments bounds how many sealed segments are retained
	// (default 360 — six hours of one-minute windows). Oldest evicted
	// first.
	MaxSegments int
	// MaxBytes bounds the total encoded bytes of sealed segments
	// (default 8 MiB per node). Oldest evicted first.
	MaxBytes int64
}

// DefaultConfig returns an enabled store with the default budget:
// one-minute windows retained for six hours within 8 MiB.
func DefaultConfig() Config {
	return Config{Enabled: true, WindowSeconds: 60, MaxSegments: 360, MaxBytes: 8 << 20}
}

func (c Config) withDefaults() Config {
	if c.WindowSeconds <= 0 {
		c.WindowSeconds = 60
	}
	if c.MaxSegments <= 0 {
		c.MaxSegments = 360
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 8 << 20
	}
	return c
}

// Stats counts a store's lifetime activity. Bytes/record ratios come
// from TotalEncodedBytes / SealedRecords.
type Stats struct {
	// Execs/Hops/Events count records ever appended.
	Execs, Hops, Events int64
	// Sealed counts segments ever sealed; Evicted how many of those the
	// retention budget has since dropped.
	Sealed, Evicted int64
	// SealedRecords counts records ever encoded into sealed segments.
	SealedRecords int64
	// EncodedBytes is the currently retained sealed payload;
	// TotalEncodedBytes the lifetime total.
	EncodedBytes, TotalEncodedBytes int64
}

// Appended returns the total records ever appended.
func (s Stats) Appended() int64 { return s.Execs + s.Hops + s.Events }

// BytesPerRecord is the lifetime encoded-size ratio, 0 before the
// first seal.
func (s Stats) BytesPerRecord() float64 {
	if s.SealedRecords == 0 {
		return 0
	}
	return float64(s.TotalEncodedBytes) / float64(s.SealedRecords)
}

// Sealed is one encoded, immutable segment.
type Sealed struct {
	// Window is the segment's window index: it covers virtual times
	// [Window*W, (Window+1)*W) for window width W.
	Window int64
	// Execs/Hops/Events are the record counts inside.
	Execs, Hops, Events int
	data                []byte
}

// Bytes returns the encoded size.
func (s *Sealed) Bytes() int { return len(s.data) }

// SegmentInfo describes one segment for inspection (Segments).
type SegmentInfo struct {
	Window              int64
	Execs, Hops, Events int
	Bytes               int
	SealedSeg           bool
}

// Store is one node's append-only trace log. Like the engine node that
// owns it, it is single-threaded: the node's executor is the only
// writer, and queries run while the node is quiescent (a View decodes
// sealed segments without mutating the store).
type Store struct {
	local  string
	cfg    Config
	active *segment
	sealed []*Sealed
	stats  Stats
}

// New creates a store for a node. The config's zero bounds are
// defaulted; Enabled is the caller's concern (an engine only calls New
// when the kill switch is open).
func New(local string, cfg Config) *Store {
	return &Store{local: local, cfg: cfg.withDefaults()}
}

// Local returns the owning node's address.
func (st *Store) Local() string { return st.local }

// Stats returns a snapshot of the lifetime counters.
func (st *Store) Stats() Stats { return st.stats }

// WindowSeconds returns the configured window width.
func (st *Store) WindowSeconds() float64 { return st.cfg.WindowSeconds }

func (st *Store) windowOf(t float64) int64 {
	return int64(math.Floor(t / st.cfg.WindowSeconds))
}

// rotate seals the active segment if t falls in a later window and
// returns the number of records encoded by that seal (0 when no seal
// happened) — the caller's hook for metering seal cost. A t before the
// active window (the driver's clock never regresses, but the store does
// not rely on it) lands in the active segment.
func (st *Store) rotate(t float64) int {
	w := st.windowOf(t)
	if st.active == nil {
		st.active = &segment{window: w}
		return 0
	}
	if w <= st.active.window {
		return 0
	}
	n := st.seal()
	st.active = &segment{window: w}
	return n
}

// seal encodes the active segment and applies the retention budget.
// O(active segment): history is never touched beyond dropping whole
// segments from the head of the sealed list.
func (st *Store) seal() int {
	seg := st.active
	if seg == nil || seg.records() == 0 {
		return 0
	}
	data := encodeSegment(seg)
	st.sealed = append(st.sealed, &Sealed{
		Window: seg.window,
		Execs:  len(seg.execs), Hops: len(seg.hops), Events: len(seg.events),
		data: data,
	})
	st.stats.Sealed++
	st.stats.SealedRecords += int64(seg.records())
	st.stats.EncodedBytes += int64(len(data))
	st.stats.TotalEncodedBytes += int64(len(data))
	for len(st.sealed) > 1 &&
		(len(st.sealed) > st.cfg.MaxSegments || st.stats.EncodedBytes > st.cfg.MaxBytes) {
		st.stats.EncodedBytes -= int64(len(st.sealed[0].data))
		st.stats.Evicted++
		st.sealed = st.sealed[1:]
	}
	return seg.records()
}

// AppendExec appends one rule-execution edge, keyed by its emission
// time. Returns the records sealed by a window rotation this append
// triggered (0 normally), so the caller can meter the amortized seal
// cost.
func (st *Store) AppendExec(e Exec) int {
	st.stats.Execs++
	n := st.rotate(e.OutT)
	st.active.execs = append(st.active.execs, e)
	return n
}

// AppendHop appends one cross-node provenance edge.
func (st *Store) AppendHop(h Hop) int {
	st.stats.Hops++
	n := st.rotate(h.T)
	st.active.hops = append(st.active.hops, h)
	return n
}

// AppendEvent appends one system event.
func (st *Store) AppendEvent(ev Event) int {
	st.stats.Events++
	n := st.rotate(ev.T)
	st.active.events = append(st.active.events, ev)
	return n
}

// Segments lists the retained segments oldest-first, the active
// segment last. Inspection only — the bench and tests use it.
func (st *Store) Segments() []SegmentInfo {
	out := make([]SegmentInfo, 0, len(st.sealed)+1)
	for _, s := range st.sealed {
		out = append(out, SegmentInfo{
			Window: s.Window, Execs: s.Execs, Hops: s.Hops, Events: s.Events,
			Bytes: len(s.data), SealedSeg: true,
		})
	}
	if st.active != nil && st.active.records() > 0 {
		out = append(out, SegmentInfo{
			Window: st.active.window,
			Execs:  len(st.active.execs), Hops: len(st.active.hops), Events: len(st.active.events),
		})
	}
	return out
}

// snapshot returns the segments a View reads: decoded sealed segments
// plus a shallow copy of the active one. Sealed data is immutable;
// the active copy pins the slice headers so later appends to the store
// do not invalidate an open View.
func (st *Store) snapshot(since float64) ([]*segment, error) {
	var segs []*segment
	for _, s := range st.sealed {
		if float64(s.Window+1)*st.cfg.WindowSeconds <= since {
			continue // window entirely before the horizon
		}
		seg, err := decodeSegment(s.data)
		if err != nil {
			return nil, err
		}
		segs = append(segs, seg)
	}
	if st.active != nil && st.active.records() > 0 {
		cp := *st.active
		segs = append(segs, &cp)
	}
	return segs, nil
}
