// Package tracestore is the durable side of the §2.1 tracer: an
// append-only, time-window-partitioned log of everything the tracer
// observes — rule executions, cross-node tuple hops, and system events
// — kept compact enough to answer "what happened in the last 6 hours?"
// long after the tracer's ref-counted memo evicted the live rows.
//
// The store is organized as one in-memory *active* segment receiving
// O(1) appends plus a bounded list of *sealed* segments. When an append
// crosses a virtual-time window boundary the active segment is sealed:
// encoded once (O(segment), never O(history)) into a delta-encoded
// columnar byte block — strings interned into a per-segment dictionary,
// tuple IDs zigzag-delta varints, timestamps XOR-delta varints of their
// IEEE-754 bits (lossless) — and appended to the sealed list, which a
// retention budget (segment count and encoded bytes) trims from the
// oldest end. On top sits a query layer (query.go) answering causal
// lineage questions across windows and across nodes.
//
// The package has no dependency on the engine or tracer: records are
// plain structs, so trace writes through without an import cycle.
package tracestore

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Exec is one causal rule-execution edge, mirroring a ruleExec row:
// rule consumed tuple InID (observed at InT) and produced OutID at
// OutT; IsEvent distinguishes the triggering-event link from
// precondition links.
type Exec struct {
	Rule      string
	InID      uint64
	OutID     uint64
	InT, OutT float64
	IsEvent   bool
}

// Hop is one cross-node provenance edge, mirroring a remote-sourced
// tupleTable row: local tuple ID arrived from node Src where it was
// known as SrcID, destined for Dst, registered at T.
type Hop struct {
	ID    uint64
	Src   string
	SrcID uint64
	Dst   string
	T     float64
}

// Event is one tupleLog-style system event: Op is "arrive", "insert",
// "delete", "watchTable", or "restart"; Name and ID identify the tuple.
type Event struct {
	Op   string
	Name string
	ID   uint64
	T    float64
}

// segment is the raw (active) form of one time window of records.
// Appends are plain slice appends; order is append order, which on a
// node is nondecreasing in time.
type segment struct {
	window int64
	execs  []Exec
	hops   []Hop
	events []Event
}

func (s *segment) records() int { return len(s.execs) + len(s.hops) + len(s.events) }

// dict interns strings in first-appearance order, which makes the
// encoding deterministic for equal record sequences.
type dict struct {
	idx  map[string]uint64
	strs []string
}

func (d *dict) id(s string) uint64 {
	if i, ok := d.idx[s]; ok {
		return i
	}
	i := uint64(len(d.strs))
	d.idx[s] = i
	d.strs = append(d.strs, s)
	return i
}

// encodeSegment serializes a segment into its sealed columnar form:
//
//	window | dictionary | counts | exec cols | hop cols | event cols
//
// Columns are delta chains: uint64 IDs as zigzag varints against the
// previous value in the same column, float64 timestamps as uvarints of
// their bits XORed with the previous value's bits (adjacent virtual
// times share high bits, so the XOR is small), booleans as a packed
// bitset. Encoding is lossless — decodeSegment inverts it exactly.
func encodeSegment(seg *segment) []byte {
	d := dict{idx: make(map[string]uint64)}
	for i := range seg.execs {
		d.id(seg.execs[i].Rule)
	}
	for i := range seg.hops {
		d.id(seg.hops[i].Src)
		d.id(seg.hops[i].Dst)
	}
	for i := range seg.events {
		d.id(seg.events[i].Op)
		d.id(seg.events[i].Name)
	}

	b := make([]byte, 0, 32+8*seg.records())
	b = binary.AppendVarint(b, seg.window)
	b = binary.AppendUvarint(b, uint64(len(d.strs)))
	for _, s := range d.strs {
		b = binary.AppendUvarint(b, uint64(len(s)))
		b = append(b, s...)
	}
	b = binary.AppendUvarint(b, uint64(len(seg.execs)))
	b = binary.AppendUvarint(b, uint64(len(seg.hops)))
	b = binary.AppendUvarint(b, uint64(len(seg.events)))

	// Exec columns.
	for i := range seg.execs {
		b = binary.AppendUvarint(b, d.idx[seg.execs[i].Rule])
	}
	var prev uint64
	for i := range seg.execs {
		b = binary.AppendVarint(b, int64(seg.execs[i].InID-prev))
		prev = seg.execs[i].InID
	}
	prev = 0
	for i := range seg.execs {
		b = binary.AppendVarint(b, int64(seg.execs[i].OutID-prev))
		prev = seg.execs[i].OutID
	}
	var prevBits uint64
	for i := range seg.execs {
		bits := math.Float64bits(seg.execs[i].InT)
		b = binary.AppendUvarint(b, bits^prevBits)
		prevBits = bits
	}
	// OutT is XORed against the same record's InT (an activation's end
	// is even closer to its own start than to the previous end).
	for i := range seg.execs {
		b = binary.AppendUvarint(b,
			math.Float64bits(seg.execs[i].OutT)^math.Float64bits(seg.execs[i].InT))
	}
	b = appendBitset(b, len(seg.execs), func(i int) bool { return seg.execs[i].IsEvent })

	// Hop columns.
	prev = 0
	for i := range seg.hops {
		b = binary.AppendVarint(b, int64(seg.hops[i].ID-prev))
		prev = seg.hops[i].ID
	}
	for i := range seg.hops {
		b = binary.AppendUvarint(b, d.idx[seg.hops[i].Src])
	}
	prev = 0
	for i := range seg.hops {
		b = binary.AppendVarint(b, int64(seg.hops[i].SrcID-prev))
		prev = seg.hops[i].SrcID
	}
	for i := range seg.hops {
		b = binary.AppendUvarint(b, d.idx[seg.hops[i].Dst])
	}
	prevBits = 0
	for i := range seg.hops {
		bits := math.Float64bits(seg.hops[i].T)
		b = binary.AppendUvarint(b, bits^prevBits)
		prevBits = bits
	}

	// Event columns.
	for i := range seg.events {
		b = binary.AppendUvarint(b, d.idx[seg.events[i].Op])
	}
	for i := range seg.events {
		b = binary.AppendUvarint(b, d.idx[seg.events[i].Name])
	}
	prev = 0
	for i := range seg.events {
		b = binary.AppendVarint(b, int64(seg.events[i].ID-prev))
		prev = seg.events[i].ID
	}
	prevBits = 0
	for i := range seg.events {
		bits := math.Float64bits(seg.events[i].T)
		b = binary.AppendUvarint(b, bits^prevBits)
		prevBits = bits
	}
	return b
}

func appendBitset(b []byte, n int, bit func(int) bool) []byte {
	var cur byte
	for i := 0; i < n; i++ {
		if bit(i) {
			cur |= 1 << (i % 8)
		}
		if i%8 == 7 {
			b = append(b, cur)
			cur = 0
		}
	}
	if n%8 != 0 {
		b = append(b, cur)
	}
	return b
}

// reader is a bounds-checked cursor over an encoded segment; every read
// reports malformed input as an error instead of panicking, so decode
// is safe on arbitrary bytes.
type reader struct {
	b   []byte
	off int
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("tracestore: truncated uvarint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *reader) varint() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("tracestore: truncated varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.b) {
		return nil, fmt.Errorf("tracestore: truncated %d-byte field at offset %d", n, r.off)
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s, nil
}

// maxSegmentRecords bounds decoded record counts so a corrupt header
// cannot provoke a huge allocation.
const maxSegmentRecords = 1 << 28

func (r *reader) count() (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > maxSegmentRecords {
		return 0, fmt.Errorf("tracestore: implausible count %d", v)
	}
	return int(v), nil
}

// decodeSegment inverts encodeSegment. For every well-formed input
// decode(encode(seg)) is deep-equal to seg; malformed input returns an
// error.
func decodeSegment(b []byte) (*segment, error) {
	r := &reader{b: b}
	window, err := r.varint()
	if err != nil {
		return nil, err
	}
	nStrs, err := r.count()
	if err != nil {
		return nil, err
	}
	strs := make([]string, nStrs)
	for i := range strs {
		n, err := r.count()
		if err != nil {
			return nil, err
		}
		s, err := r.bytes(n)
		if err != nil {
			return nil, err
		}
		strs[i] = string(s)
	}
	str := func(idx uint64) (string, error) {
		if idx >= uint64(len(strs)) {
			return "", fmt.Errorf("tracestore: dictionary index %d out of range (%d strings)", idx, len(strs))
		}
		return strs[idx], nil
	}
	nExecs, err := r.count()
	if err != nil {
		return nil, err
	}
	nHops, err := r.count()
	if err != nil {
		return nil, err
	}
	nEvents, err := r.count()
	if err != nil {
		return nil, err
	}
	seg := &segment{window: window}
	if nExecs > 0 {
		seg.execs = make([]Exec, nExecs)
	}
	if nHops > 0 {
		seg.hops = make([]Hop, nHops)
	}
	if nEvents > 0 {
		seg.events = make([]Event, nEvents)
	}

	// Exec columns.
	for i := range seg.execs {
		idx, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if seg.execs[i].Rule, err = str(idx); err != nil {
			return nil, err
		}
	}
	var prev uint64
	for i := range seg.execs {
		d, err := r.varint()
		if err != nil {
			return nil, err
		}
		prev += uint64(d)
		seg.execs[i].InID = prev
	}
	prev = 0
	for i := range seg.execs {
		d, err := r.varint()
		if err != nil {
			return nil, err
		}
		prev += uint64(d)
		seg.execs[i].OutID = prev
	}
	var prevBits uint64
	for i := range seg.execs {
		x, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		prevBits ^= x
		seg.execs[i].InT = math.Float64frombits(prevBits)
	}
	for i := range seg.execs {
		x, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		seg.execs[i].OutT = math.Float64frombits(math.Float64bits(seg.execs[i].InT) ^ x)
	}
	bits, err := r.bytes((nExecs + 7) / 8)
	if err != nil {
		return nil, err
	}
	for i := range seg.execs {
		seg.execs[i].IsEvent = bits[i/8]&(1<<(i%8)) != 0
	}

	// Hop columns.
	prev = 0
	for i := range seg.hops {
		d, err := r.varint()
		if err != nil {
			return nil, err
		}
		prev += uint64(d)
		seg.hops[i].ID = prev
	}
	for i := range seg.hops {
		idx, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if seg.hops[i].Src, err = str(idx); err != nil {
			return nil, err
		}
	}
	prev = 0
	for i := range seg.hops {
		d, err := r.varint()
		if err != nil {
			return nil, err
		}
		prev += uint64(d)
		seg.hops[i].SrcID = prev
	}
	for i := range seg.hops {
		idx, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if seg.hops[i].Dst, err = str(idx); err != nil {
			return nil, err
		}
	}
	prevBits = 0
	for i := range seg.hops {
		x, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		prevBits ^= x
		seg.hops[i].T = math.Float64frombits(prevBits)
	}

	// Event columns.
	for i := range seg.events {
		idx, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if seg.events[i].Op, err = str(idx); err != nil {
			return nil, err
		}
	}
	for i := range seg.events {
		idx, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if seg.events[i].Name, err = str(idx); err != nil {
			return nil, err
		}
	}
	prev = 0
	for i := range seg.events {
		d, err := r.varint()
		if err != nil {
			return nil, err
		}
		prev += uint64(d)
		seg.events[i].ID = prev
	}
	prevBits = 0
	for i := range seg.events {
		x, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		prevBits ^= x
		seg.events[i].T = math.Float64frombits(prevBits)
	}
	return seg, nil
}
