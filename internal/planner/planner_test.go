package planner

import (
	"strings"
	"testing"

	"p2go/internal/dataflow"
	"p2go/internal/overlog"
)

// env marks the named predicates as materialized.
func env(names ...string) Env {
	set := map[string]bool{}
	for _, n := range names {
		set[n] = true
	}
	return EnvFunc(func(name string) bool { return set[name] })
}

var labelN int

func genLabel() string {
	labelN++
	return "gen" + strings.Repeat("x", labelN%3)
}

func plan(t *testing.T, src string, e Env) []*dataflow.Strand {
	t.Helper()
	prog, err := overlog.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	strands, err := PlanRule("q", prog.Rules()[0], e, genLabel)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	for _, s := range strands {
		if s.QueryID != "q" {
			t.Fatalf("strand %s: QueryID = %q, want %q", s, s.QueryID, "q")
		}
	}
	return strands
}

func planErr(t *testing.T, src string, e Env) error {
	t.Helper()
	prog, err := overlog.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = PlanRule("q", prog.Rules()[0], e, genLabel)
	if err == nil {
		t.Fatalf("plan of %q must fail", src)
	}
	return err
}

func TestEventTriggerSingleStrand(t *testing.T) {
	strands := plan(t, `r1 out@N(A, B) :- ev@N(A), tab@N(A, B).`, env("tab"))
	if len(strands) != 1 {
		t.Fatalf("strands = %d, want 1", len(strands))
	}
	s := strands[0]
	if s.Trigger.Kind != dataflow.TriggerEvent || s.Trigger.Name != "ev" {
		t.Errorf("trigger = %+v", s.Trigger)
	}
	if s.Stages != 1 {
		t.Errorf("stages = %d, want 1", s.Stages)
	}
	if len(s.Ops) != 1 {
		t.Fatalf("ops = %d, want 1 join", len(s.Ops))
	}
	if j, ok := s.Ops[0].(*dataflow.JoinOp); !ok || j.Table != "tab" || j.Stage != 1 {
		t.Errorf("op = %+v", s.Ops[0])
	}
}

func TestDeltaRewriteOneStrandPerPredicate(t *testing.T) {
	strands := plan(t, `p1 path@B(C) :- link@A(B), path@A(C).`, env("link", "path"))
	if len(strands) != 2 {
		t.Fatalf("strands = %d, want 2 (delta rewrite)", len(strands))
	}
	names := []string{strands[0].Trigger.Name, strands[1].Trigger.Name}
	if names[0] != "link" || names[1] != "path" {
		t.Errorf("trigger names = %v", names)
	}
	for _, s := range strands {
		if s.Trigger.Kind != dataflow.TriggerDelta {
			t.Errorf("trigger kind = %v, want delta", s.Trigger.Kind)
		}
		if s.Stages != 1 {
			t.Errorf("stages = %d, want 1 (other predicate joined)", s.Stages)
		}
	}
}

func TestTwoEventsRejected(t *testing.T) {
	err := planErr(t, `bad@N(A) :- ev1@N(A), ev2@N(A).`, env())
	if !strings.Contains(err.Error(), "two event predicates") {
		t.Errorf("error = %v", err)
	}
}

func TestPeriodicTrigger(t *testing.T) {
	s := plan(t, `t1 tick@N(E) :- periodic@N(E, 2.5).`, env())[0]
	if s.Trigger.Kind != dataflow.TriggerPeriodic || s.Trigger.Period != 2.5 {
		t.Errorf("trigger = %+v", s.Trigger)
	}
	s = plan(t, `t2 once@N(E) :- periodic@N(E, 1, 3).`, env())[0]
	if s.Trigger.Count != 3 {
		t.Errorf("count = %d", s.Trigger.Count)
	}
	planErr(t, `t3 x@N(E) :- periodic@N(E, T).`, env())
	planErr(t, `t4 x@N(E) :- periodic@N(E, 0).`, env())
	planErr(t, `t5 x@N(E) :- ev@N(E), periodic@N(E2, 5).`, env())
}

func TestConditionPlacementSourceOrder(t *testing.T) {
	// The f_rand assignment is written after the join, so it must run
	// per join row (cs2 semantics), not be hoisted to the front.
	s := plan(t, `cs2 out@N(A, R) :- ev@N(E), tab@N(A), R := f_rand().`, env("tab"))[0]
	if len(s.Ops) != 2 {
		t.Fatalf("ops = %d", len(s.Ops))
	}
	if _, ok := s.Ops[0].(*dataflow.JoinOp); !ok {
		t.Errorf("op0 = %T, want join first", s.Ops[0])
	}
	if _, ok := s.Ops[1].(*dataflow.AssignOp); !ok {
		t.Errorf("op1 = %T, want assignment after join", s.Ops[1])
	}
}

func TestConditionDeferredUntilBound(t *testing.T) {
	// Condition written before the predicate that binds B: deferred.
	s := plan(t, `r out@N(A) :- ev@N(A), B > 3, tab@N(A, B).`, env("tab"))[0]
	if len(s.Ops) != 2 {
		t.Fatalf("ops = %d", len(s.Ops))
	}
	if _, ok := s.Ops[0].(*dataflow.JoinOp); !ok {
		t.Errorf("op0 = %T", s.Ops[0])
	}
	if _, ok := s.Ops[1].(*dataflow.CondOp); !ok {
		t.Errorf("op1 = %T", s.Ops[1])
	}
}

func TestUnboundVariableErrors(t *testing.T) {
	planErr(t, `r out@N(A) :- ev@N(A), B > 3.`, env())
	planErr(t, `r out@N(A, B) :- ev@N(A).`, env())
	planErr(t, `r out@N(min<D>) :- ev@N(A).`, env())
}

func TestDeleteHeadAllowsWildcards(t *testing.T) {
	s := plan(t, `d delete tab@N(K, V) :- drop@N(K).`, env("tab"))[0]
	if !s.IsDelete {
		t.Error("IsDelete not set")
	}
	// V is unbound but allowed as a wildcard in a delete head.
}

func TestAggregateSpec(t *testing.T) {
	s := plan(t, `a out@N(K, min<D>) :- ev@N(K), tab@N(K, D).`, env("tab"))[0]
	if s.Agg == nil || s.Agg.Op != "min" || s.Agg.ArgIndex != 2 {
		t.Fatalf("agg = %+v", s.Agg)
	}
	if s.Agg.Slot < 0 {
		t.Error("min aggregate needs a bound slot")
	}
}

func TestCountZeroEligibility(t *testing.T) {
	// Group vars fully bound by the event trigger: EmitZero.
	s := plan(t, `a out@N(K, count<*>) :- ev@N(K), tab@N(K, D).`, env("tab"))[0]
	if s.Agg == nil || !s.Agg.EmitZero {
		t.Errorf("EmitZero = %+v, want true", s.Agg)
	}
	// Group var bound only by the scanned table: no zero emission.
	s = plan(t, `b out@N(G, count<*>) :- periodic@N(E, 5), tab@N(G, D).`, env("tab"))[0]
	if s.Agg.EmitZero {
		t.Error("EmitZero must be false when group vars come from the scan")
	}
}

func TestAggregateDeltaRescansOwnTable(t *testing.T) {
	// cs6 shape: delta-triggered aggregate over its own table must
	// rescan the table (one join op) with only group vars bound by the
	// trigger.
	s := plan(t, `cs6 cluster@N(P, S, count<*>) :- resp@N(P, Q, S).`, env("resp"))[0]
	if s.Trigger.Kind != dataflow.TriggerDelta {
		t.Fatalf("trigger = %+v", s.Trigger)
	}
	if len(s.Ops) != 1 {
		t.Fatalf("ops = %d, want self-rescan join", len(s.Ops))
	}
	j := s.Ops[0].(*dataflow.JoinOp)
	if j.Table != "resp" {
		t.Errorf("join table = %s", j.Table)
	}
	// The trigger must not bind Q (the non-group variable).
	qSlot := -1
	for i, n := range s.VarNames {
		if n == "Q" {
			qSlot = i
		}
	}
	if qSlot < 0 {
		t.Fatal("Q not in var table")
	}
	for _, slot := range s.Trigger.FieldSlots {
		if slot == qSlot {
			t.Error("trigger binds non-group variable Q")
		}
	}
}

func TestTriggerConstants(t *testing.T) {
	s := plan(t, `sr13 out@N(E) :- snapState@N(E, "Snapping"), done@N(E).`, env("snapState", "done"))
	// Two delta strands; the snapState strand carries the constant.
	var snap *dataflow.Strand
	for _, st := range s {
		if st.Trigger.Name == "snapState" {
			snap = st
		}
	}
	if snap == nil {
		t.Fatal("no snapState strand")
	}
	if snap.Trigger.FieldConsts[2].IsNil() {
		t.Error("trigger constant missing")
	}
}

func TestNoBodyPredicatesRejected(t *testing.T) {
	planErr(t, `r out@N(1) :- 1 < 2.`, env())
}

func TestGeneratedLabels(t *testing.T) {
	s := plan(t, `out@N(A) :- ev@N(A).`, env())[0]
	if s.RuleID == "" {
		t.Error("unlabeled rule must receive a generated label")
	}
}

func TestReassignmentRejected(t *testing.T) {
	err := planErr(t, `r out@N(A) :- ev@N(A), A := 5.`, env())
	if !strings.Contains(err.Error(), "already bound") {
		t.Errorf("err = %v", err)
	}
	// Assigning distinct fresh variables remains fine.
	plan(t, `r out@N(A, B, C) :- ev@N(A), B := A + 1, C := B + 1.`, env())
}
