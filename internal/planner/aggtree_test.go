package planner

import (
	"strings"
	"testing"

	"p2go/internal/overlog"
)

func parseRule(t *testing.T, src string) *overlog.Rule {
	t.Helper()
	prog, err := overlog.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	rules := prog.Rules()
	if len(rules) != 1 {
		t.Fatalf("parse %q: %d rules", src, len(rules))
	}
	return rules[0]
}

func statsEnv(names ...string) Env {
	mat := map[string]bool{"nodeStats": true, "hostLoad": true}
	for _, n := range names {
		mat[n] = true
	}
	return EnvFunc(func(name string) bool { return mat[name] })
}

func TestAnalyzeClusterAggEligible(t *testing.T) {
	cases := []struct {
		src               string
		op, value, locVar string
	}{
		{`r1 busyTotal@M(sum<V>) :- nodeStats@N(Ep, C, V), C == "BusySeconds".`, "sum", "V", "N"},
		{`r2 liveNodes@M(count<*>) :- nodeStats@N(Ep, C, V), C == "BusySeconds".`, "count", "", "N"},
		{`r3 minLoad@M(min<L>) :- hostLoad@N(L).`, "min", "L", "N"},
		{`r4 avgLoad@M(avg<L>) :- hostLoad@N(L), L >= 0.`, "avg", "L", "N"},
		{`r5 peak@M(max<S>) :- hostLoad@N(L), S := L * 2.`, "max", "S", "N"},
	}
	for _, c := range cases {
		a, err := AnalyzeClusterAgg(parseRule(t, c.src), statsEnv())
		if err != nil {
			t.Errorf("%s: unexpected ineligibility: %v", c.src, err)
			continue
		}
		if a.Op != c.op || a.Value != c.value || a.LocVar != c.locVar || a.RootVar != "M" {
			t.Errorf("%s: analysis = %+v", c.src, a)
		}
	}
}

func TestAnalyzeClusterAggIneligible(t *testing.T) {
	cases := []struct {
		src    string
		reason string // substring of the returned error
	}{
		{`r1 out@n1(sum<V>) :- nodeStats@N(Ep, C, V).`, "variable location"},
		{`r1 out@M(Ep, sum<V>) :- nodeStats@N(Ep, C, V).`, "group-by"},
		{`r1 out@M(V) :- nodeStats@N(Ep, C, V).`, "not an aggregate"},
		{`r1 out@M(count<*>) :- C := 1 + 2.`, "no predicates"},
		{`r1 out@M(count<*>) :- ping@N(X).`, "not a materialized table"},
		{`r1 out@M(sum<V>) :- nodeStats@N(Ep, C, V), hostLoad@P(L).`, "two location"},
		{`r1 out@M(sum<V>) :- nodeStats@N(Ep, C, V), T := f_now().`, "impure"},
		{`r1 out@M(sum<W>) :- nodeStats@N(Ep, C, V).`, "not bound"},
		{`r1 out@N(sum<V>) :- nodeStats@N(Ep, C, V).`, "bound in the body"},
		{`r1 out@M(count<*>) :- periodic@N(E, 5).`, "periodic"},
	}
	for _, c := range cases {
		a, err := AnalyzeClusterAgg(parseRule(t, c.src), statsEnv())
		if err == nil {
			t.Errorf("%s: unexpectedly eligible: %+v", c.src, a)
			continue
		}
		if !strings.Contains(err.Error(), c.reason) {
			t.Errorf("%s: reason %q, want substring %q", c.src, err, c.reason)
		}
	}
}

// planProgram compiles every generated rule the way a node would at
// install time: generated tables materialize first, then each rule is
// planned against them.
func planProgram(t *testing.T, src string) *overlog.Program {
	t.Helper()
	prog, err := overlog.Parse(src)
	if err != nil {
		t.Fatalf("generated program does not parse: %v\n%s", err, src)
	}
	mat := map[string]bool{
		"nodeStats": true, "hostLoad": true,
		NodeEpochTable: true, TreeParentTable: true,
	}
	for _, m := range prog.Materializations() {
		mat[m.Name] = true
	}
	env := EnvFunc(func(name string) bool { return mat[name] })
	n := 0
	gen := func() string { n++; return "auto" + strings.Repeat("x", n) }
	for _, r := range prog.Rules() {
		if _, err := PlanRule("q", r, env, gen); err != nil {
			t.Errorf("generated rule does not plan: %v\n%s", err, r)
		}
	}
	return prog
}

func TestRewriteTreeModePlans(t *testing.T) {
	a, err := AnalyzeClusterAgg(parseRule(t,
		`r1 busyTotal@M(sum<V>) :- nodeStats@N(Ep, C, V), C == "BusySeconds".`), statsEnv())
	if err != nil {
		t.Fatal(err)
	}
	src, err := a.Rewrite(SplitConfig{Tag: "busy", Period: 5, Tree: true})
	if err != nil {
		t.Fatal(err)
	}
	prog := planProgram(t, src)
	if got := len(prog.Rules()); got != 8 {
		t.Errorf("tree rewrite emitted %d rules, want 8\n%s", got, src)
	}
	if !strings.Contains(src, TreeParentTable) {
		t.Errorf("tree rewrite does not route on %s:\n%s", TreeParentTable, src)
	}
	for _, want := range []string{"aggPart_busy", "aggSelfW_busy", "aggSubC_busy", "busyTotal@AggN(AggVal)"} {
		if !strings.Contains(src, want) {
			t.Errorf("tree rewrite missing %q:\n%s", want, src)
		}
	}
	// The count merge must install before the weight merge so each tick
	// leaves a consistent (W, C) pair for the upward strands.
	if strings.Index(src, "agg_busy_mc") > strings.Index(src, "agg_busy_mw") {
		t.Errorf("count merge must precede weight merge:\n%s", src)
	}
}

func TestRewriteFlatModePlans(t *testing.T) {
	a, err := AnalyzeClusterAgg(parseRule(t,
		`r1 avgLoad@M(avg<L>) :- hostLoad@N(L).`), statsEnv())
	if err != nil {
		t.Fatal(err)
	}
	src, err := a.Rewrite(SplitConfig{Tag: "load", Period: 2, Root: "n1"})
	if err != nil {
		t.Fatal(err)
	}
	prog := planProgram(t, src)
	if got := len(prog.Rules()); got != 7 {
		t.Errorf("flat rewrite emitted %d rules, want 7\n%s", got, src)
	}
	if strings.Contains(src, TreeParentTable) {
		t.Errorf("flat rewrite must not reference the overlay:\n%s", src)
	}
	if !strings.Contains(src, `aggPart_load@"n1"`) {
		t.Errorf("flat rewrite must send partials to the collector:\n%s", src)
	}
	// avg finalizes as a guarded float division of the (sum, count) pair.
	if !strings.Contains(src, "AggC > 0") || !strings.Contains(src, "1.0 * AggW") {
		t.Errorf("avg finalize missing guard or division:\n%s", src)
	}
}

func TestRewriteFlatCollect(t *testing.T) {
	// Group-by makes this ineligible for the split; the collect
	// fallback mirrors raw rows and runs the rule at the collector.
	rule := parseRule(t, `r1 peaks@M(C, max<V>) :- nodeStats@N(_, C, V), V >= 0.`)
	if _, err := AnalyzeClusterAgg(rule, statsEnv()); err == nil {
		t.Fatal("group-by rule unexpectedly splittable")
	}
	src, err := RewriteFlatCollect(rule, statsEnv(), SplitConfig{Tag: "peaks", Period: 3, Root: "n1"})
	if err != nil {
		t.Fatal(err)
	}
	prog := planProgram(t, src)
	if got := len(prog.Rules()); got != 3 {
		t.Errorf("collect rewrite emitted %d rules, want 3\n%s", got, src)
	}
	for _, want := range []string{`aggRaw_peaks@"n1"`, "peaks@M(C, max<V>)", "aggRaw_peaks@M(N,"} {
		if !strings.Contains(src, want) {
			t.Errorf("collect rewrite missing %q:\n%s", want, src)
		}
	}
	// Multi-predicate bodies are out of scope for raw collection.
	multi := parseRule(t, `r1 out@M(sum<V>) :- nodeStats@N(Ep, C, V), hostLoad@P(L).`)
	if _, err := RewriteFlatCollect(multi, statsEnv(), SplitConfig{Tag: "x", Period: 3, Root: "n1"}); err == nil {
		t.Error("multi-predicate collect unexpectedly succeeded")
	}
}

func TestRewriteValidation(t *testing.T) {
	a, err := AnalyzeClusterAgg(parseRule(t,
		`r1 out@M(count<*>) :- hostLoad@N(L).`), statsEnv())
	if err != nil {
		t.Fatal(err)
	}
	bad := []SplitConfig{
		{Tag: "x y", Period: 5, Tree: true},
		{Tag: "ok", Period: 0, Tree: true},
		{Tag: "ok", Period: 5, Tree: false}, // flat without root
	}
	for _, cfg := range bad {
		if _, err := a.Rewrite(cfg); err == nil {
			t.Errorf("Rewrite(%+v) unexpectedly succeeded", cfg)
		}
	}
	collide := *a
	collide.Head = "aggPart_ok"
	if _, err := collide.Rewrite(SplitConfig{Tag: "ok", Period: 5, Tree: true}); err == nil {
		t.Error("head/table collision not rejected")
	}
}
