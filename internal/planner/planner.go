// Package planner translates parsed OverLog rules into executable
// dataflow strands (Figure 1 of the paper): it performs the delta
// rewrite, assigns variable slots, orders join/selection/assignment
// elements, and numbers the stateful stages the execution tracer taps.
//
// Triggering semantics, following P2:
//
//   - A rule body may contain at most one event predicate (a predicate
//     that is not materialized); that event triggers the single strand.
//     The built-in periodic@N(E, T[, Count]) is an event driven by a
//     node-local timer.
//   - A rule whose body predicates are all materialized produces one
//     strand per body predicate, each triggered by insertions into that
//     table (the delta rewrite).
//   - Aggregate rules recompute their aggregate on every trigger. For a
//     delta trigger, the triggering tuple contributes only its group-by
//     bindings and the table is rescanned, so the emitted aggregate
//     covers the whole group, not just the new row.
package planner

import (
	"fmt"
	"sort"

	"p2go/internal/dataflow"
	"p2go/internal/overlog"
	"p2go/internal/tuple"
)

// Env tells the planner which predicates are materialized tables on the
// node where the rule will run.
type Env interface {
	IsMaterialized(name string) bool
}

// EnvFunc adapts a function to Env.
type EnvFunc func(name string) bool

// IsMaterialized implements Env.
func (f EnvFunc) IsMaterialized(name string) bool { return f(name) }

// PlanRule compiles one rule into its strands, tagging each with the
// installing query's ID (the engine's unit of uninstallation and cost
// attribution). labelGen supplies labels for unlabeled rules.
func PlanRule(queryID string, r *overlog.Rule, env Env, labelGen func() string) ([]*dataflow.Strand, error) {
	plans, err := CompileRule(r, env, labelGen)
	if err != nil {
		return nil, err
	}
	strands := make([]*dataflow.Strand, len(plans))
	for i, p := range plans {
		strands[i] = p.Instantiate(queryID)
	}
	return strands, nil
}

// CompileRule compiles one rule into its immutable shared plans. Plans
// carry no query tag or execution state; callers instantiate them per
// node with Plan.Instantiate ("plan once, instantiate N times"). Given
// the same rule, environment answers, and label sequence, compilation is
// deterministic, so a shared plan and a per-node private plan are
// structurally identical.
func CompileRule(r *overlog.Rule, env Env, labelGen func() string) ([]*dataflow.Plan, error) {
	label := r.Label
	if label == "" {
		label = labelGen()
	}
	preds := r.Predicates()
	if len(preds) == 0 {
		return nil, fmt.Errorf("planner: rule %s has no body predicates", label)
	}

	var eventIdx []int
	for i, p := range preds {
		if p.Name == "periodic" || !env.IsMaterialized(p.Name) {
			eventIdx = append(eventIdx, i)
		}
	}
	if len(eventIdx) > 1 {
		return nil, fmt.Errorf("planner: rule %s joins two event predicates (%s, %s); events cannot be joined — materialize one of them",
			label, preds[eventIdx[0]].Name, preds[eventIdx[1]].Name)
	}

	if len(eventIdx) == 1 {
		s, err := buildStrand(r, label, env, preds, eventIdx[0], false)
		if err != nil {
			return nil, err
		}
		return []*dataflow.Plan{s}, nil
	}
	// Delta rewrite: one strand per (distinct) body predicate position.
	plans := make([]*dataflow.Plan, 0, len(preds))
	for i := range preds {
		s, err := buildStrand(r, label, env, preds, i, true)
		if err != nil {
			return nil, err
		}
		plans = append(plans, s)
	}
	return plans, nil
}

// vars assigns slots to variable names in first-appearance order.
type varTable struct {
	slots map[string]int
	names []string
}

func newVarTable() *varTable { return &varTable{slots: map[string]int{}} }

func (vt *varTable) slot(name string) int {
	if s, ok := vt.slots[name]; ok {
		return s
	}
	s := len(vt.names)
	vt.slots[name] = s
	vt.names = append(vt.names, name)
	return s
}

func (vt *varTable) has(name string) bool {
	_, ok := vt.slots[name]
	return ok
}

// fieldPattern converts functor arguments into per-field slots and
// constants.
func fieldPattern(args []overlog.Expr, vt *varTable, bindOnly map[string]bool) (slots []int, consts []tuple.Value, err error) {
	slots = make([]int, len(args))
	consts = make([]tuple.Value, len(args))
	for i, a := range args {
		slots[i] = -1
		switch x := a.(type) {
		case *overlog.Var:
			if bindOnly != nil && !bindOnly[x.Name] {
				continue // trigger of an aggregate delta: skip non-group vars
			}
			slots[i] = vt.slot(x.Name)
		case *overlog.Lit:
			consts[i] = x.Val
			if consts[i].IsNil() {
				return nil, nil, fmt.Errorf("nil constant in predicate argument")
			}
		case *overlog.Wildcard:
			// stays -1
		default:
			return nil, nil, fmt.Errorf("unsupported predicate argument %s", a.String())
		}
	}
	return slots, consts, nil
}

func buildStrand(r *overlog.Rule, label string, env Env, preds []*overlog.Functor, trigIdx int, delta bool) (*dataflow.Plan, error) {
	s := &dataflow.Plan{
		RuleID:   label,
		Source:   r.String(),
		HeadName: r.Head.Name,
		IsDelete: r.Delete,
	}
	vt := newVarTable()
	trig := preds[trigIdx]

	// Aggregate spec (validated by the parser: at most one).
	var aggExpr *overlog.Agg
	aggIdx := -1
	headAll := r.Head.AllArgs()
	for i, a := range headAll {
		if ag, ok := a.(*overlog.Agg); ok {
			aggExpr, aggIdx = ag, i
		}
	}

	// Trigger pattern. For aggregate delta strands, the trigger binds
	// only group-by variables; everything else comes from the rescan.
	var bindOnly map[string]bool
	aggDelta := aggExpr != nil && delta
	if aggDelta {
		bindOnly = map[string]bool{}
		for i, a := range headAll {
			if i == aggIdx {
				continue
			}
			for v := range overlog.Vars(a) {
				bindOnly[v] = true
			}
		}
	}
	trigSlots, trigConsts, err := fieldPattern(trig.AllArgs(), vt, bindOnly)
	if err != nil {
		return nil, fmt.Errorf("planner: rule %s trigger %s: %w", label, trig.Name, err)
	}
	s.Trigger = dataflow.Trigger{
		Name:        trig.Name,
		FieldSlots:  trigSlots,
		FieldConsts: trigConsts,
	}
	switch {
	case trig.Name == "periodic":
		s.Trigger.Kind = dataflow.TriggerPeriodic
		if err := planPeriodic(&s.Trigger, trig); err != nil {
			return nil, fmt.Errorf("planner: rule %s: %w", label, err)
		}
	case delta:
		s.Trigger.Kind = dataflow.TriggerDelta
	default:
		s.Trigger.Kind = dataflow.TriggerEvent
	}

	// Body compilation: predicates become joins in source order (the
	// trigger occurrence is skipped except in aggregate delta strands,
	// which rescan their own table); conditions and assignments are
	// placed at the earliest point their variables are bound.
	type pending struct {
		term overlog.BodyTerm
	}
	var waiting []pending
	stage := 0

	tryPlacePending := func() error {
		progress := true
		for progress {
			progress = false
			for i := 0; i < len(waiting); i++ {
				switch t := waiting[i].term.(type) {
				case *overlog.Cond:
					if allBound(overlog.Vars(t.Expr), vt) {
						s.Ops = append(s.Ops, &dataflow.CondOp{Expr: t.Expr})
						waiting = append(waiting[:i], waiting[i+1:]...)
						progress, i = true, i-1
					}
				case *overlog.Assign:
					if allBound(overlog.Vars(t.Expr), vt) {
						if vt.has(t.Var) {
							return fmt.Errorf("planner: rule %s: %s is already bound; := binds fresh variables only", label, t.Var)
						}
						slot := vt.slot(t.Var)
						s.Ops = append(s.Ops, &dataflow.AssignOp{Slot: slot, Expr: t.Expr})
						waiting = append(waiting[:i], waiting[i+1:]...)
						progress, i = true, i-1
					}
				}
			}
		}
		return nil
	}

	trigSeen := false
	for _, term := range r.Body {
		switch t := term.(type) {
		case *overlog.Pred:
			isTrig := &t.Functor == trig
			if isTrig {
				trigSeen = true
			}
			if isTrig && !aggDelta {
				// Trigger already bound; nothing to join.
				if err := tryPlacePending(); err != nil {
					return nil, err
				}
				continue
			}
			if t.Name == "periodic" {
				return nil, fmt.Errorf("planner: rule %s: periodic cannot be joined", label)
			}
			if !env.IsMaterialized(t.Name) && !isTrig {
				return nil, fmt.Errorf("planner: rule %s: predicate %s is neither materialized nor the trigger", label, t.Name)
			}
			// Snapshot which variables are bound before this join so
			// the dataflow can probe an index over the bound fields.
			boundBefore := map[string]bool{}
			for name := range vt.slots {
				boundBefore[name] = true
			}
			slots, consts, err := fieldPattern(t.AllArgs(), vt, nil)
			if err != nil {
				return nil, fmt.Errorf("planner: rule %s predicate %s: %w", label, t.Name, err)
			}
			var indexPos []int
			for fi, a := range t.AllArgs() {
				switch x := a.(type) {
				case *overlog.Lit:
					indexPos = append(indexPos, fi)
				case *overlog.Var:
					if boundBefore[x.Name] {
						indexPos = append(indexPos, fi)
					}
				}
			}
			stage++
			s.Ops = append(s.Ops, &dataflow.JoinOp{
				Table:          t.Name,
				Stage:          stage,
				FieldSlots:     slots,
				FieldConsts:    consts,
				IndexPositions: indexPos,
			})
		case *overlog.Cond, *overlog.Assign:
			waiting = append(waiting, pending{term: term})
		}
		if err := tryPlacePending(); err != nil {
			return nil, err
		}
	}
	_ = trigSeen
	if err := tryPlacePending(); err != nil {
		return nil, err
	}
	if len(waiting) > 0 {
		return nil, fmt.Errorf("planner: rule %s: term %q uses variables never bound by a predicate",
			label, waiting[0].term.String())
	}
	s.Stages = stage

	// Head arguments. Non-delete rules need every head variable bound;
	// delete rules treat unbound head variables as wildcards.
	s.HeadArgs = headAll
	for i, a := range headAll {
		if i == aggIdx {
			continue
		}
		for v := range overlog.Vars(a) {
			if !vt.has(v) {
				if r.Delete {
					continue
				}
				return nil, fmt.Errorf("planner: rule %s: head variable %s is unbound", label, v)
			}
		}
	}
	if aggExpr != nil {
		spec := &dataflow.AggSpec{Op: aggExpr.Op, ArgIndex: aggIdx, Slot: -1}
		if aggExpr.Var != "" {
			if !vt.has(aggExpr.Var) {
				return nil, fmt.Errorf("planner: rule %s: aggregate variable %s is unbound", label, aggExpr.Var)
			}
			spec.Slot = vt.slots[aggExpr.Var]
		} else if aggExpr.Op != "count" {
			return nil, fmt.Errorf("planner: rule %s: %s<*> is not meaningful", label, aggExpr.Op)
		}
		// count-zero emission is possible when every group-by variable
		// is bound directly by the trigger pattern.
		if spec.Op == "count" {
			spec.EmitZero = true
			trigBound := map[int]bool{}
			for _, slot := range trigSlots {
				if slot >= 0 {
					trigBound[slot] = true
				}
			}
			for i, a := range headAll {
				if i == aggIdx {
					continue
				}
				for v := range overlog.Vars(a) {
					if !vt.has(v) || !trigBound[vt.slots[v]] {
						spec.EmitZero = false
					}
				}
			}
		}
		s.Agg = spec
	}

	s.NumVars = len(vt.names)
	s.VarNames = vt.names
	if aggDelta && s.Agg != nil {
		s.AggPlan = analyzeAggMaint(s, headAll, aggIdx)
	}
	s.Footprint = analyzeFootprint(s)
	return s, nil
}

// analyzeFootprint computes a strand's static read/write table
// footprint (see dataflow.Footprint): the tables its joins probe, the
// table (or event) its head writes, and whether any expression calls an
// impure builtin — in which case the engine pins the strand to
// sequential execution, because f_now reads the micro-clock and
// f_rand/f_randID advance the node's RNG cursor, both of which depend
// on the exact sequential interleaving.
func analyzeFootprint(s *dataflow.Plan) dataflow.Footprint {
	fp := dataflow.Footprint{Write: s.HeadName}
	seen := map[string]bool{}
	for _, op := range s.Ops {
		switch o := op.(type) {
		case *dataflow.JoinOp:
			if !seen[o.Table] {
				seen[o.Table] = true
				fp.Reads = append(fp.Reads, o.Table)
			}
		case *dataflow.CondOp:
			if !pureExpr(o.Expr) {
				fp.Impure = true
			}
		case *dataflow.AssignOp:
			if !pureExpr(o.Expr) {
				fp.Impure = true
			}
		}
	}
	for _, a := range s.HeadArgs {
		if !pureExpr(a) {
			fp.Impure = true
		}
	}
	sort.Strings(fp.Reads)
	return fp
}

// analyzeAggMaint decides whether an aggregate delta strand is eligible
// for incremental maintenance and, if so, builds its AggPlan. The
// maintained accumulator evaluates the pipeline without the trigger
// binding, so eligibility demands that the pipeline be self-sufficient
// and that the trigger's only influence — equality constraints on
// group-by variables — be recoverable at emission time:
//
//   - the strand's first op is the rescan join of the trigger table
//     itself (the primary), and the primary is not self-joined;
//   - simulated from an empty binding, every condition, assignment and
//     head argument sees only variables bound by earlier joins/assigns;
//   - every trigger-bound slot appears as a bare head argument, giving
//     the emission-time filter (group value = trigger value) that
//     replaces the rescan's trigger-bound join unification;
//   - all expressions are pure (f_now/f_rand/f_randID would make cached
//     contributions diverge from a fresh rescan);
//   - the rule is not a delete rule (wildcard head semantics).
//
// Ineligible strands keep the per-activation rescan; semantics are
// identical either way.
func analyzeAggMaint(s *dataflow.Plan, headAll []overlog.Expr, aggIdx int) *dataflow.AggPlan {
	if s.IsDelete || len(s.Ops) == 0 {
		return nil
	}
	op0, ok := s.Ops[0].(*dataflow.JoinOp)
	if !ok || op0.Table != s.Trigger.Name {
		return nil
	}
	nameSlot := map[string]int{}
	for i, nm := range s.VarNames {
		nameSlot[nm] = i
	}
	// Boundness simulation without the trigger binding.
	bound := make([]bool, s.NumVars)
	allBoundSlots := func(vars map[string]bool) bool {
		for v := range vars {
			if !bound[nameSlot[v]] {
				return false
			}
		}
		return true
	}
	seen := map[string]bool{}
	var secondaries []string
	for _, op := range s.Ops {
		switch o := op.(type) {
		case *dataflow.JoinOp:
			if op != s.Ops[0] {
				if o.Table == op0.Table {
					return nil // self-join on the primary
				}
				if !seen[o.Table] {
					seen[o.Table] = true
					secondaries = append(secondaries, o.Table)
				}
			}
			for _, slot := range o.FieldSlots {
				if slot >= 0 {
					bound[slot] = true
				}
			}
		case *dataflow.CondOp:
			if !pureExpr(o.Expr) || !allBoundSlots(overlog.Vars(o.Expr)) {
				return nil
			}
		case *dataflow.AssignOp:
			if !pureExpr(o.Expr) || !allBoundSlots(overlog.Vars(o.Expr)) {
				return nil
			}
			bound[o.Slot] = true
		}
	}
	for i, a := range headAll {
		if i == aggIdx {
			continue
		}
		if !pureExpr(a) || !allBoundSlots(overlog.Vars(a)) {
			return nil
		}
	}
	// Emission-time filter: every trigger-bound slot must be a bare head
	// argument so its group value can be compared against the trigger.
	var filter []dataflow.AggFilterPos
	filtered := map[int]bool{}
	for _, slot := range s.Trigger.FieldSlots {
		if slot < 0 || filtered[slot] {
			continue
		}
		gi := -1
		j := 0
		for i, a := range headAll {
			if i == aggIdx {
				continue
			}
			if v, ok := a.(*overlog.Var); ok && nameSlot[v.Name] == slot {
				gi = j
				break
			}
			j++
		}
		if gi < 0 {
			return nil
		}
		filtered[slot] = true
		filter = append(filter, dataflow.AggFilterPos{GroupIdx: gi, Slot: slot})
	}
	return &dataflow.AggPlan{Primary: op0.Table, Secondaries: secondaries, Filter: filter}
}

// pureExpr reports whether an expression is free of impure builtins
// (whose value depends on when they run rather than on their inputs).
func pureExpr(e overlog.Expr) bool {
	switch x := e.(type) {
	case *overlog.Call:
		switch x.Name {
		case "f_now", "f_rand", "f_randID":
			return false
		}
		for _, a := range x.Args {
			if !pureExpr(a) {
				return false
			}
		}
	case *overlog.Unary:
		return pureExpr(x.X)
	case *overlog.Binary:
		return pureExpr(x.L) && pureExpr(x.R)
	case *overlog.ListExpr:
		for _, el := range x.Elems {
			if !pureExpr(el) {
				return false
			}
		}
	case *overlog.RangeExpr:
		return pureExpr(x.X) && pureExpr(x.Lo) && pureExpr(x.Hi)
	}
	return true
}

func allBound(vars map[string]bool, vt *varTable) bool {
	for v := range vars {
		if !vt.has(v) {
			return false
		}
	}
	return true
}

// planPeriodic validates periodic@N(E, T[, Count]) and extracts the
// period and optional firing count.
func planPeriodic(trig *dataflow.Trigger, f *overlog.Functor) error {
	args := f.AllArgs()
	if len(args) != 3 && len(args) != 4 {
		return fmt.Errorf("periodic wants (E, Period) or (E, Period, Count) plus location")
	}
	lit, ok := args[2].(*overlog.Lit)
	if !ok {
		return fmt.Errorf("periodic period must be a constant")
	}
	switch lit.Val.Kind() {
	case tuple.KindInt:
		trig.Period = float64(lit.Val.AsInt())
	case tuple.KindFloat:
		trig.Period = lit.Val.AsFloat()
	default:
		return fmt.Errorf("periodic period must be numeric")
	}
	if trig.Period <= 0 {
		return fmt.Errorf("periodic period must be positive")
	}
	if len(args) == 4 {
		lit, ok := args[3].(*overlog.Lit)
		if !ok || lit.Val.Kind() != tuple.KindInt {
			return fmt.Errorf("periodic count must be an integer constant")
		}
		trig.Count = int(lit.Val.AsInt())
	}
	return nil
}
