package planner

import (
	"testing"

	"p2go/internal/dataflow"
)

// strandFor picks the delta strand triggered by the named table.
func strandFor(t *testing.T, strands []*dataflow.Strand, trig string) *dataflow.Strand {
	t.Helper()
	for _, s := range strands {
		if s.Trigger.Name == trig {
			return s
		}
	}
	t.Fatalf("no strand triggered by %s", trig)
	return nil
}

// The monitor's cs6 shape: a count over a single table, every group
// variable trigger-bound and bare in the head. Eligible with no
// secondaries and a full emission filter.
func TestAggMaintSingleTableCount(t *testing.T) {
	strands := plan(t,
		`cs6 respCluster@NA(ProbeID, SAddr, count<*>) :- conRespTable@NA(ProbeID, ReqID, SAddr).`,
		env("conRespTable"))
	if len(strands) != 1 {
		t.Fatalf("strands = %d, want 1", len(strands))
	}
	s := strands[0]
	p := s.AggPlan
	if p == nil {
		t.Fatal("single-table count must be maintainable")
	}
	if p.Primary != "conRespTable" || len(p.Secondaries) != 0 {
		t.Errorf("plan = %+v", p)
	}
	// NA, ProbeID, SAddr are trigger-bound and map to group positions
	// 0, 1, 2 (head args minus the aggregate).
	if len(p.Filter) != 3 {
		t.Fatalf("filter = %+v, want 3 entries", p.Filter)
	}
	for i, f := range p.Filter {
		if f.GroupIdx != i {
			t.Errorf("filter[%d].GroupIdx = %d, want %d", i, f.GroupIdx, i)
		}
	}
	if !s.Agg.EmitZero {
		t.Error("all group vars trigger-bound: EmitZero must hold")
	}
}

// The chord bs1 shape: min over a join with an assignment. The strand
// triggered by the first body table is maintainable with the second
// table as a secondary; the strand triggered by the second table is not
// (its primary join is not the strand's first op).
func TestAggMaintJoinAssign(t *testing.T) {
	strands := plan(t,
		`bs1 bestSuccDist@N(min<D>) :- succ@N(SID, SAddr), node@N(NID), D := SID - NID - 1.`,
		env("succ", "node"))
	if len(strands) != 2 {
		t.Fatalf("strands = %d, want 2", len(strands))
	}
	hot := strandFor(t, strands, "succ")
	p := hot.AggPlan
	if p == nil {
		t.Fatal("succ-triggered min strand must be maintainable")
	}
	if p.Primary != "succ" || len(p.Secondaries) != 1 || p.Secondaries[0] != "node" {
		t.Errorf("plan = %+v", p)
	}
	if len(p.Filter) != 1 || p.Filter[0].GroupIdx != 0 {
		t.Errorf("filter = %+v, want the location var at group 0", p.Filter)
	}
	if cold := strandFor(t, strands, "node"); cold.AggPlan != nil {
		t.Error("node-triggered strand rescans succ before its own table; not maintainable")
	}
}

// Event-triggered aggregates (the chord l2 lookup shape) are recomputed
// per event; only delta strands are maintained.
func TestAggMaintEventTriggerIneligible(t *testing.T) {
	strands := plan(t,
		`l2 bestLookupDist@N(K, ReqAddr, E, min<D>) :- node@N(NID), lookup@N(K, ReqAddr, E), finger@N(I, FID, FAddr), D := K - FID - 1, FID in (NID, K).`,
		env("node", "finger"))
	if len(strands) != 1 {
		t.Fatalf("strands = %d, want 1", len(strands))
	}
	if strands[0].AggPlan != nil {
		t.Error("event-triggered aggregate must not be maintained")
	}
}

// A trigger-bound variable folded into a head expression cannot be
// recovered from the group values at emission time.
func TestAggMaintNonBareGroupIneligible(t *testing.T) {
	strands := plan(t,
		`r out@N(X + 1, count<*>) :- tab@N(X, Y).`,
		env("tab"))
	if strands[0].AggPlan != nil {
		t.Error("non-bare trigger-bound head arg must block maintenance")
	}
}

// Impure builtins would make cached contributions diverge from a fresh
// rescan.
func TestAggMaintImpureIneligible(t *testing.T) {
	strands := plan(t,
		`r out@N(X, sum<Z>) :- tab@N(X, Y), Z := Y % f_rand().`,
		env("tab"))
	if strands[0].AggPlan != nil {
		t.Error("impure assignment must block maintenance")
	}
}

// Self-joining the primary table gives each row two roles; the
// accumulator only models one.
func TestAggMaintSelfJoinIneligible(t *testing.T) {
	strands := plan(t,
		`r out@N(count<*>) :- link@N(A, B), link@N(B, C).`,
		env("link"))
	for _, s := range strands {
		if s.AggPlan != nil {
			t.Errorf("self-join strand %s must not be maintained", s)
		}
	}
}
