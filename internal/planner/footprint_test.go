package planner

import (
	"reflect"
	"testing"
)

// TestFootprintReadsSortedDeduped pins the static footprint the
// intra-node scheduler groups strands by: Reads is the sorted, deduped
// set of joined tables, Write is the head predicate, and a rule built
// purely from joins, comparisons and arithmetic is not Impure.
func TestFootprintReadsSortedDeduped(t *testing.T) {
	strands := plan(t,
		`r1 out@N(A, B, C) :- ev@N(A), zz@N(A, B), aa@N(A, C), zz@N(B, C).`,
		env("zz", "aa"))
	if len(strands) != 1 {
		t.Fatalf("got %d strands, want 1", len(strands))
	}
	fp := strands[0].Footprint
	if want := []string{"aa", "zz"}; !reflect.DeepEqual(fp.Reads, want) {
		t.Errorf("Reads = %v, want %v (sorted, deduped)", fp.Reads, want)
	}
	if fp.Write != "out" {
		t.Errorf("Write = %q, want %q", fp.Write, "out")
	}
	if fp.Impure {
		t.Error("Impure = true for a pure join/compare rule")
	}
}

// TestFootprintImpure pins impurity detection: any expression touching
// the node clock or RNG must mark the strand, because those values
// depend on the micro-clock position within the fan-out and pin the
// strand to sequential execution.
func TestFootprintImpure(t *testing.T) {
	cases := map[string]string{
		"assign f_now":  `r1 out@N(A, T) :- ev@N(A), T := f_now().`,
		"cond f_now":    `r1 out@N(A) :- ev@N(A), tab@N(A, B), B < f_now().`,
		"assign f_rand": `r1 out@N(A, E) :- ev@N(A), E := f_rand().`,
	}
	for name, src := range cases {
		strands := plan(t, src, env("tab"))
		for _, s := range strands {
			if !s.Footprint.Impure {
				t.Errorf("%s: strand %v not marked Impure", name, s)
			}
		}
	}
}

// TestFootprintDeltaStrands checks that every delta strand of an
// all-materialized rule carries its own footprint: same head write,
// reads covering the joined (non-trigger) tables.
func TestFootprintDeltaStrands(t *testing.T) {
	strands := plan(t, `r1 out@N(A, B) :- t1@N(A), t2@N(A, B).`,
		env("t1", "t2", "out"))
	if len(strands) < 2 {
		t.Fatalf("got %d strands, want one per body table", len(strands))
	}
	for _, s := range strands {
		fp := s.Footprint
		if fp.Write != "out" {
			t.Errorf("strand %v: Write = %q, want %q", s, fp.Write, "out")
		}
		if len(fp.Reads) == 0 {
			t.Errorf("strand %v: no Reads recorded; each delta strand joins the other table", s)
		}
		if fp.Impure {
			t.Errorf("strand %v: Impure = true for a pure join rule", s)
		}
	}
}
