package planner

import (
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"

	"p2go/internal/overlog"
)

// Cluster-aggregate splitting: rewrite an eligible aggregate query over
// every node's local state into an in-network aggregation program. The
// paper computes cluster-wide monitoring values (section 3.2's
// aggregates over distributed state) by collecting every row at one
// node; at scale that gives the collector O(N) inbound tuples per
// refresh. The split keeps the aggregate's value while bounding fan-in:
// each node maintains a local partial aggregate, periodically pushes it
// one hop up an aggregation tree (or straight to the collector in flat
// mode), and interior nodes merge child partials so no node ever
// receives more than its tree fan-in per refresh.
//
// The split is exact for the distributive aggregates (count, sum, min,
// max) and algebraic avg, which travels as a (sum, count) pair and is
// divided only at the root. Partials are uniform across ops: every
// upward tuple is aggPart_<tag>(Parent, Child, Epoch, W, C) where W is
// the op-specific weight (count or sum or min or max over the subtree)
// and C is the subtree's contributing-row count. Carrying C for every
// op costs one field and buys a single tuple layout plus a free
// node-coverage diagnostic.
//
// Liveness under churn is TTL-based, mirroring the overlay tables: a
// parent's inbox row for a child expires PartTTLFactor refresh periods
// after the child last pushed, so a crashed subtree ages out of the
// aggregate without any explicit retraction protocol. Rows also carry
// the child's nodeEpoch incarnation so forensic queries can tell a
// fresh-epoch row from a stale pre-crash one.

// DisableAggTree is the aggregation-tree kill switch, set from the
// P2GO_DISABLE_AGGTREE environment variable at process start. When set,
// planners and deployers fall back to flat collection (every node sends
// its leaf partial straight to the collector) so operators can rule the
// tree overlay in or out while debugging a monitoring discrepancy.
// Tests and benchmarks toggle it directly, like
// dataflow.DisableIncrementalAggs.
var DisableAggTree = os.Getenv("P2GO_DISABLE_AGGTREE") != ""

const (
	// NodeEpochTable is the engine-owned incarnation table
	// (engine.NodeEpochTableName) generated refresh rules join so every
	// partial carries its origin's epoch.
	NodeEpochTable = "nodeEpoch"
	// TreeParentTable is the overlay's parent-selection table
	// (chord.TreeParentTableName); tree-mode rewrites route partials
	// along it. The root is the node whose treeParent row names itself.
	TreeParentTable = "treeParent"
	// PartTTLFactor scales the refresh period into the partial-inbox
	// TTL: a child missing this many refreshes ages out of its parent's
	// merge, which is how the aggregate sheds crashed subtrees.
	PartTTLFactor = 2.5
)

// ClusterAgg is the analysis of one splittable cluster aggregate: a
// rule head @Root(op<V>) whose body reads only local materialized state
// at a single location variable, with the head location free — i.e. "a
// value computed from every node's tables, delivered somewhere else".
type ClusterAgg struct {
	// Head is the result predicate name; the rewrite materializes it
	// (one row) at the collector.
	Head string
	// RootVar is the head's free location variable (the collector).
	RootVar string
	// Op is the aggregate: count, sum, min, max or avg.
	Op string
	// Value is the aggregated body variable ("" for count<*>).
	Value string
	// LocVar is the body's shared location variable.
	LocVar string
	// Body is the re-rendered body source, reused verbatim by the
	// generated leaf rules.
	Body string
}

// mergeOp maps each splittable aggregate to the operator that combines
// child W partials; avg travels as a sum and divides at the root.
var mergeOp = map[string]string{
	"count": "sum",
	"sum":   "sum",
	"min":   "min",
	"max":   "max",
	"avg":   "sum",
}

// AnalyzeClusterAgg decides whether rule r can be split into leaf
// partial-aggregates plus merge strands. The returned error is the
// human-readable ineligibility reason callers log when they fall back
// to flat collection of raw rows.
func AnalyzeClusterAgg(r *overlog.Rule, env Env) (*ClusterAgg, error) {
	if r.Delete {
		return nil, fmt.Errorf("delete rules cannot be split")
	}
	rootVar, ok := r.Head.Loc.(*overlog.Var)
	if !ok {
		return nil, fmt.Errorf("head needs an explicit variable location (@Root)")
	}
	if len(r.Head.Args) != 1 {
		return nil, fmt.Errorf("head must carry exactly one aggregate column (group-by is not splittable)")
	}
	agg, ok := r.Head.Args[0].(*overlog.Agg)
	if !ok {
		return nil, fmt.Errorf("head column is not an aggregate")
	}
	if _, ok := mergeOp[agg.Op]; !ok {
		return nil, fmt.Errorf("aggregate %s has no distributive merge", agg.Op)
	}
	preds := r.Predicates()
	if len(preds) == 0 {
		return nil, fmt.Errorf("body has no predicates")
	}
	locVar := ""
	bound := map[string]bool{}
	for _, p := range preds {
		if p.Name == "periodic" {
			return nil, fmt.Errorf("periodic bodies are not splittable (the rewrite owns the refresh clock)")
		}
		lv, ok := p.Loc.(*overlog.Var)
		if !ok {
			return nil, fmt.Errorf("body predicate %s needs a variable location", p.Name)
		}
		if locVar == "" {
			locVar = lv.Name
		} else if lv.Name != locVar {
			return nil, fmt.Errorf("body spans two location variables (%s and %s)", locVar, lv.Name)
		}
		if !env.IsMaterialized(p.Name) {
			return nil, fmt.Errorf("body predicate %s is not a materialized table (leaf partials are delta-maintained)", p.Name)
		}
		for _, arg := range p.AllArgs() {
			if v, ok := arg.(*overlog.Var); ok {
				bound[v.Name] = true
			}
		}
	}
	for _, t := range r.Body {
		switch x := t.(type) {
		case *overlog.Cond:
			if !pureExpr(x.Expr) {
				return nil, fmt.Errorf("condition %s uses an impure builtin", x)
			}
		case *overlog.Assign:
			if !pureExpr(x.Expr) {
				return nil, fmt.Errorf("assignment %s uses an impure builtin", x)
			}
			bound[x.Var] = true
		}
	}
	if bound[rootVar.Name] {
		return nil, fmt.Errorf("head location %s is bound in the body (not a free collector)", rootVar.Name)
	}
	if agg.Var != "" && !bound[agg.Var] {
		return nil, fmt.Errorf("aggregated variable %s is not bound by the body", agg.Var)
	}
	body := make([]string, len(r.Body))
	for i, t := range r.Body {
		body[i] = t.String()
	}
	return &ClusterAgg{
		Head:    r.Head.Name,
		RootVar: rootVar.Name,
		Op:      agg.Op,
		Value:   agg.Var,
		LocVar:  locVar,
		Body:    strings.Join(body, ", "),
	}, nil
}

// SplitConfig parameterizes the generated program.
type SplitConfig struct {
	// Tag suffixes every generated table and rule label, so several
	// split queries coexist on one node. Identifier characters only.
	Tag string
	// Period is the refresh cadence in seconds: how often each node
	// pushes its (re-merged) partial one hop up.
	Period float64
	// Root is the collector address. Flat mode sends every leaf partial
	// straight to it; tree mode ignores it (the root is wherever the
	// overlay's treeParent self-loop lands, by construction the same
	// node).
	Root string
	// Tree routes partials along the treeParent overlay; false is the
	// flat-collection fallback.
	Tree bool
}

var tagRE = regexp.MustCompile(`^[A-Za-z0-9_]+$`)

// Rewrite generates the OverLog split program for the analyzed
// aggregate: leaf rules maintaining the local partial (delta strands
// over the original body, so the incremental-aggregate path applies),
// a per-query refresh clock, and tick-driven merge/upward strands.
//
// Propagation is deliberately tick-paced rather than delta-cascaded:
// emissions land after the tick's strands finish, so each refresh moves
// partials exactly one level and a depth-d tree converges d+2 ticks
// after its leaves stabilize. In exchange every row in every partial
// inbox is re-pushed (and so TTL-refreshed) every period even when
// values are static — liveness never depends on values changing. The
// count-merge strand installs before the weight-merge strand on
// purpose: both fire on the same tick, so the root and upward strands
// always read a (W, C) pair from the same refresh.
//
// The same program text installs on every node; rules that only matter
// at interior nodes or the root simply never fire elsewhere.
func (a *ClusterAgg) Rewrite(cfg SplitConfig) (string, error) {
	if !tagRE.MatchString(cfg.Tag) {
		return "", fmt.Errorf("split tag %q must be identifier characters", cfg.Tag)
	}
	if cfg.Period <= 0 {
		return "", fmt.Errorf("split period must be positive, got %g", cfg.Period)
	}
	if !cfg.Tree && cfg.Root == "" {
		return "", fmt.Errorf("flat split needs a collector root address")
	}
	tag := cfg.Tag
	selfW, selfC := "aggSelfW_"+tag, "aggSelfC_"+tag
	part, subW, subC := "aggPart_"+tag, "aggSubW_"+tag, "aggSubC_"+tag
	tick := "aggTick_" + tag
	for _, n := range []string{selfW, selfC, part, subW, subC, tick} {
		if n == a.Head {
			return "", fmt.Errorf("head table %s collides with a generated table", a.Head)
		}
	}
	leaf := a.Op + "<" + a.Value + ">"
	switch a.Op {
	case "count":
		leaf = "count<*>"
	case "avg":
		leaf = "sum<" + a.Value + ">"
	}
	period := strconv.FormatFloat(cfg.Period, 'g', -1, 64)
	ttl := strconv.FormatFloat(PartTTLFactor*cfg.Period, 'g', -1, 64)

	var b strings.Builder
	w := func(format string, args ...any) {
		fmt.Fprintf(&b, format+"\n", args...)
	}
	// Partial inboxes are keyed by child (field 2), so a re-push
	// replaces the child's previous row and a silent child expires.
	w("materialize(%s, infinity, 1, keys(1)).", selfW)
	w("materialize(%s, infinity, 1, keys(1)).", selfC)
	w("materialize(%s, %s, infinity, keys(2)).", part, ttl)
	w("materialize(%s, infinity, 1, keys(1)).", subW)
	w("materialize(%s, infinity, 1, keys(1)).", subC)
	w("materialize(%s, infinity, 1, keys(1)).", a.Head)
	// Leaf partials: the original body, aggregated locally.
	w("agg_%s_lw %s@%s(%s) :- %s.", tag, selfW, a.LocVar, leaf, a.Body)
	w("agg_%s_lc %s@%s(count<*>) :- %s.", tag, selfC, a.LocVar, a.Body)
	// Refresh clock.
	w("agg_%s_tk %s@AggN(AggE) :- periodic@AggN(AggE, %s).", tag, tick, period)
	// Self partial into the local inbox (tree) or straight to the
	// collector (flat).
	if cfg.Tree {
		w("agg_%s_sf %s@AggN(AggN, AggEp, AggW, AggC) :- %s@AggN(AggE), %s@AggN(AggW), %s@AggN(AggC), %s@AggN(AggEp).",
			tag, part, tick, selfW, selfC, NodeEpochTable)
	} else {
		w("agg_%s_sf %s@%q(AggN, AggEp, AggW, AggC) :- %s@AggN(AggE), %s@AggN(AggW), %s@AggN(AggC), %s@AggN(AggEp).",
			tag, part, cfg.Root, tick, selfW, selfC, NodeEpochTable)
	}
	// Subtree merge; count first so the weight strand's readers see a
	// consistent pair (see the tick-pacing note above).
	w("agg_%s_mc %s@AggN(sum<AggC>) :- %s@AggN(AggE), %s@AggN(AggChild, AggEp, AggW, AggC).",
		tag, subC, tick, part)
	w("agg_%s_mw %s@AggN(%s<AggW>) :- %s@AggN(AggE), %s@AggN(AggChild, AggEp, AggW, AggC).",
		tag, subW, mergeOp[a.Op], tick, part)
	// Upward push (tree only: flat leaves already sent to the root).
	if cfg.Tree {
		w("agg_%s_up %s@AggP(AggN, AggEp, AggW, AggC) :- %s@AggN(AggE), %s@AggN(AggW), %s@AggN(AggC), %s@AggN(AggEp), %s@AggN(AggP), AggP != AggN.",
			tag, part, tick, subW, subC, NodeEpochTable, TreeParentTable)
	}
	// Root finalize: the whole-cluster merge becomes the original head.
	rootGuard := fmt.Sprintf("AggN == %q", cfg.Root)
	if cfg.Tree {
		rootGuard = fmt.Sprintf("%s@AggN(AggP), AggP == AggN", TreeParentTable)
	}
	finalize := "AggVal := AggW"
	if a.Op == "avg" {
		finalize = "AggC > 0, AggVal := (1.0 * AggW) / AggC"
	}
	w("agg_%s_rt %s@AggN(AggVal) :- %s@AggN(AggE), %s@AggN(AggW), %s@AggN(AggC), %s, %s.",
		tag, a.Head, tick, subW, subC, rootGuard, finalize)
	return b.String(), nil
}

// RewriteFlatCollect is the fallback for rules AnalyzeClusterAgg
// rejects (group-by columns, most commonly): every node periodically
// ships its matching raw rows to the collector, where the original
// rule runs unchanged over the mirrored copies. No partial aggregation
// — the collector's fan-in is O(cluster), which is exactly what the
// split avoids — so deployers log the ineligibility reason when they
// take this path. The mirror is a TTL'd set keyed on whole rows:
// superseded rows linger up to one inbox TTL, so aggregates over
// fast-moving values are window-approximate here (the split path has
// no such lag). Single-predicate bodies only.
func RewriteFlatCollect(r *overlog.Rule, env Env, cfg SplitConfig) (string, error) {
	if !tagRE.MatchString(cfg.Tag) {
		return "", fmt.Errorf("split tag %q must be identifier characters", cfg.Tag)
	}
	if cfg.Period <= 0 {
		return "", fmt.Errorf("split period must be positive, got %g", cfg.Period)
	}
	if cfg.Root == "" {
		return "", fmt.Errorf("flat collection needs a collector root address")
	}
	if r.Delete {
		return "", fmt.Errorf("delete rules cannot be collected")
	}
	if _, ok := r.Head.Loc.(*overlog.Var); !ok {
		return "", fmt.Errorf("head needs an explicit variable location (@Root)")
	}
	preds := r.Predicates()
	if len(preds) != 1 {
		return "", fmt.Errorf("flat collection supports a single body predicate, got %d", len(preds))
	}
	src := preds[0]
	locVar, ok := src.Loc.(*overlog.Var)
	if !ok {
		return "", fmt.Errorf("body predicate %s needs a variable location", src.Name)
	}
	if !env.IsMaterialized(src.Name) {
		return "", fmt.Errorf("body predicate %s is not a materialized table", src.Name)
	}
	for _, v := range ruleVars(r) {
		if strings.HasPrefix(v, "AggFw") {
			return "", fmt.Errorf("variable %s collides with generated names", v)
		}
	}
	tag := cfg.Tag
	mirror, tick := "aggRaw_"+tag, "aggTick_"+tag
	if mirror == r.Head.Name || tick == r.Head.Name {
		return "", fmt.Errorf("head table %s collides with a generated table", r.Head.Name)
	}
	// Forward pattern: the source pattern with wildcards named, so the
	// head can re-emit every matched field. The mirrored row keeps the
	// origin's address as its first data field.
	fresh := 0
	pat := make([]string, len(src.Args))
	fwd := make([]string, len(src.Args))
	for i, arg := range src.Args {
		if _, ok := arg.(*overlog.Wildcard); ok {
			fresh++
			pat[i] = fmt.Sprintf("AggFw%d", fresh)
		} else {
			pat[i] = arg.String()
		}
		fwd[i] = pat[i]
	}
	arity := 2 + len(src.Args) // collector, origin, fields...
	keys := make([]string, arity)
	for i := range keys {
		keys[i] = strconv.Itoa(i + 1)
	}
	period := strconv.FormatFloat(cfg.Period, 'g', -1, 64)
	ttl := strconv.FormatFloat(PartTTLFactor*cfg.Period, 'g', -1, 64)

	var b strings.Builder
	w := func(format string, args ...any) {
		fmt.Fprintf(&b, format+"\n", args...)
	}
	w("materialize(%s, %s, infinity, keys(%s)).", mirror, ttl, strings.Join(keys, ","))
	w("agg_%s_tk %s@%s(AggFwE) :- periodic@%s(AggFwE, %s).", tag, tick, locVar.Name, locVar.Name, period)
	w("agg_%s_fw %s@%q(%s) :- %s@%s(AggFwE), %s@%s(%s).",
		tag, mirror, cfg.Root,
		strings.Join(append([]string{locVar.Name}, fwd...), ", "),
		tick, locVar.Name, src.Name, locVar.Name, strings.Join(pat, ", "))
	// The original rule, re-rooted: its body predicate becomes the
	// mirror (origin address re-bound to the old location variable) and
	// its head location binds to the collector.
	rootVar := r.Head.Loc.(*overlog.Var).Name
	body := make([]string, 0, len(r.Body))
	for _, t := range r.Body {
		if p, ok := t.(*overlog.Pred); ok && p.Name == src.Name {
			body = append(body, fmt.Sprintf("%s@%s(%s)",
				mirror, rootVar, strings.Join(append([]string{locVar.Name}, argStrings(p.Args)...), ", ")))
			continue
		}
		body = append(body, t.String())
	}
	w("agg_%s_rt %s :- %s.", tag, r.Head.String(), strings.Join(body, ", "))
	return b.String(), nil
}

// ruleVars lists every variable name occurring in the rule.
func ruleVars(r *overlog.Rule) []string {
	seen := map[string]bool{}
	var walk func(e overlog.Expr)
	walk = func(e overlog.Expr) {
		switch x := e.(type) {
		case *overlog.Var:
			seen[x.Name] = true
		case *overlog.Unary:
			walk(x.X)
		case *overlog.Binary:
			walk(x.L)
			walk(x.R)
		case *overlog.Call:
			for _, a := range x.Args {
				walk(a)
			}
		case *overlog.ListExpr:
			for _, el := range x.Elems {
				walk(el)
			}
		case *overlog.RangeExpr:
			walk(x.X)
			walk(x.Lo)
			walk(x.Hi)
		}
	}
	for _, a := range r.Head.AllArgs() {
		walk(a)
	}
	for _, t := range r.Body {
		switch x := t.(type) {
		case *overlog.Pred:
			for _, a := range x.AllArgs() {
				walk(a)
			}
		case *overlog.Cond:
			walk(x.Expr)
		case *overlog.Assign:
			seen[x.Var] = true
			walk(x.Expr)
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	return out
}

func argStrings(args []overlog.Expr) []string {
	out := make([]string, len(args))
	for i, a := range args {
		out[i] = a.String()
	}
	return out
}
