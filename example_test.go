package p2go_test

import (
	"fmt"
	"sort"

	"p2go"
)

// Example demonstrates the paper's introductory continuous query: paths
// maintained as a distributed view over link state.
func Example() {
	sim := p2go.NewSim()
	net := p2go.NewNetwork(sim, p2go.NetworkConfig{Seed: 1})
	prog := p2go.MustParse(`
materialize(link, infinity, infinity, keys(1,2)).
materialize(path, infinity, infinity, keys(1,2,3)).
p0 path@A(B, [A, B], W) :- link@A(B, W).
p1 path@B(C, [B, A] + P, W1 + W2) :- link@A(B, W1), path@A(C, P, W2).
`)
	for _, a := range []string{"n1", "n2"} {
		n, _ := net.AddNode(a)
		if err := n.InstallProgram(prog); err != nil {
			fmt.Println(err)
			return
		}
	}
	net.Inject("n1", p2go.NewTuple("link", //nolint:errcheck
		p2go.Str("n1"), p2go.Str("n2"), p2go.Int(1)))
	net.Run(5)

	var got []string
	net.Node("n2").Store().Get("path").Scan(sim.Now(), func(t p2go.Tuple) {
		got = append(got, fmt.Sprintf("n2 reaches %s at cost %d",
			t.Field(1).AsStr(), t.Field(3).AsInt()))
	})
	sort.Strings(got)
	for _, s := range got {
		fmt.Println(s)
	}
	// Output:
	// n2 reaches n2 at cost 2
}

// ExampleMonitorRingPassive installs the paper's passive ring checker
// (rp4) on a running Chord ring and corrupts one node's predecessor; the
// checker flags the inconsistency without sending a single extra probe.
func ExampleMonitorRingPassive() {
	alarms := 0
	ring, err := p2go.NewChordRing(p2go.ChordRingConfig{
		N: 6, Seed: 21,
		ExtraPrograms: []*p2go.Program{p2go.MonitorRingPassive()},
		OnWatch: func(now float64, node string, t p2go.Tuple) {
			if t.Name == "inconsistentPred" && now > 250 {
				alarms++
			}
		},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	ring.Run(250) // converge
	victim := "n3"
	wrong := "n1"
	ring.Node(victim).HandleLocal(p2go.NewTuple("pred",
		p2go.Str(victim), p2go.ID(p2go.ChordNodeID(wrong)), p2go.Str(wrong)))
	ring.Run(15)
	fmt.Println("alarms raised:", alarms > 0)
	// Output:
	// alarms raised: true
}

// ExampleInstallSnapshot takes one Chandy-Lamport snapshot of a stable
// ring and reads the frozen successor relation.
func ExampleInstallSnapshot() {
	ring, err := p2go.NewChordRing(p2go.ChordRingConfig{N: 5, Seed: 11})
	if err != nil {
		fmt.Println(err)
		return
	}
	ring.Run(250)
	for _, a := range ring.Addrs {
		if err := p2go.InstallSnapshot(ring.Node(a), 0); err != nil {
			fmt.Println(err)
			return
		}
	}
	ring.Run(20)
	ring.Net.Inject("n1", p2go.NewTuple("snap", //nolint:errcheck
		p2go.Str("n1"), p2go.Int(1), p2go.Str("-")))
	ring.Run(40)

	consistent := true
	for _, a := range ring.Addrs {
		id, phase := p2go.SnapState(ring.Node(a))
		if id != 1 || phase != "Done" {
			consistent = false
		}
		if p2go.SnappedBestSucc(ring.Node(a), 1) != ring.BestSucc(a) {
			consistent = false
		}
	}
	fmt.Println("snapshot complete and consistent:", consistent)
	// Output:
	// snapshot complete and consistent: true
}
